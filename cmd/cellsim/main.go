// Command cellsim runs a single DMA scenario on the Cell BE model and
// dumps the machine-level picture behind the number: the logical-to-
// physical SPE layout, per-ring occupancy, command counts, memory bank
// traffic and MFC statistics. It is the debugging companion to cellbench.
//
// Usage:
//
//	cellsim -scenario pair -chunk 4096 -seed 3
//	cellsim -scenario cycle -spes 8
//	cellsim -scenario mem -spes 4 -op copy
//	cellsim -scenario mem -spes 4 -perf -perf-every 50000
//	cellsim -scenario gups -spes 8 -chunk 64 -volume 65536
//	cellsim -scenario stream -op triad -spes 8 -chunk 16384
//	cellsim -scenario qcd -spes 8 -chunk 4096 -ring 1
//	cellsim -scenario cycle -spes 8 -faults mfc-retry:0.01,xdr-stall:0.05 -fault-seed 7
//	cellsim -scenario wedge -spes 4 -max-cycles 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/eib"
	"cellbe/internal/fault"
	"cellbe/internal/perfctr"
	"cellbe/internal/report"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "pair, couples, cycle, mem, wedge, or a workload: gups, qcd, md, stream")
		spes     = flag.Int("spes", 2, "number of SPEs involved")
		chunk    = flag.Int("chunk", 16384, "DMA element size in bytes (gups takes 8..128)")
		op       = flag.String("op", "", "scenario operation: mem get/put/copy, gups get/put/both, stream copy/scale/add/triad (empty = kind default)")
		ring     = flag.Int("ring", 0, "qcd halo-exchange neighbour distance (0 = nearest neighbour)")
		dmalist  = flag.Bool("dmalist", false, "use the DMA-list kernel variant (GETL/PUTL)")
		volume   = flag.Int64("volume", 2<<20, "bytes per SPE")
		seed     = flag.Int64("seed", 0, "layout seed (0 = identity)")
		timeline = flag.Int64("timeline", 0, "print per-window utilization every N cycles (0 = off)")
		dumpN    = flag.Int("dump-transfers", 0, "print the last N EIB transfers as CSV")
		cfgIn    = flag.String("config", "", "JSON file overriding the machine configuration (see cellbench -dump-config)")

		faultSpec = flag.String("faults", "", "fault injection spec, e.g. mfc-retry:0.01,xdr-stall:0.05 (keys: "+strings.Join(fault.Keys(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault stream")
		maxCycles = flag.Int64("max-cycles", 0, "watchdog cycle budget (0 = unlimited)")

		traceOut     = flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON to this file")
		traceFilter  = flag.String("trace-filter", "", "comma list of event categories to trace: "+strings.Join(trace.FilterNames(), ", ")+" (empty = all)")
		traceEvents  = flag.Int("trace-events", 1<<20, "trace ring-buffer capacity (oldest events drop beyond it)")
		metricsOut   = flag.String("metrics", "", "write a utilization timeseries CSV to this file")
		metricsEvery = flag.Int64("metrics-every", 10000, "metrics sampling interval in cycles")

		perfOn    = flag.Bool("perf", false, "print the perf-counter report and the counter-vs-application bandwidth cross-check (exit 1 on disagreement)")
		perfEvery = flag.Int64("perf-every", 0, "perf-counter window snapshot interval in cycles (0 = totals only)")
	)
	flag.Parse()

	cfg := cell.DefaultConfig()
	if *cfgIn != "" {
		data, err := os.ReadFile(*cfgIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: parsing %s: %v\n", *cfgIn, err)
			os.Exit(2)
		}
	}
	cfg.Layout = cell.RandomLayout(*seed)
	if *dumpN > 0 {
		cfg.EIB.TraceCapacity = *dumpN
	}
	if *faultSpec != "" {
		fc, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = fc
		cfg.FaultSeed = *faultSeed
	}

	var tracer *trace.Tracer
	var traceMask trace.Mask
	if *traceOut != "" {
		mask, err := trace.ParseFilter(*traceFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(2)
		}
		traceMask = mask
	}
	if *metricsOut != "" && *metricsEvery <= 0 {
		fmt.Fprintf(os.Stderr, "cellsim: -metrics-every must be positive\n")
		os.Exit(2)
	}
	var sampler *trace.Sampler
	var perfWindows *perfctr.Windows
	// instrument attaches the observability hooks to the run's System.
	instrument := func(sys *cell.System) {
		if *traceOut != "" {
			tracer = trace.New(*traceEvents, traceMask)
			sys.SetTracer(tracer)
		}
		if *metricsOut != "" {
			sampler = sys.StartMetrics(sim.Time(*metricsEvery))
		}
		if *perfOn {
			// The sweep scheduler attaches counters to every point; the
			// timeline path drives the System directly and needs its own.
			if sys.Perf() == nil {
				sys.SetPerf(&perfctr.Counters{})
			}
			if *perfEvery > 0 {
				perfWindows = sys.StartPerfWindows(sim.Time(*perfEvery))
			}
		}
	}
	// flushObservability writes the trace and metrics files; it runs on
	// failure paths too, so a wedged run still leaves an inspectable trace.
	flushObservability := func() {
		if tracer != nil {
			if err := writeTrace(*traceOut, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cellsim: wrote %d trace events to %s (%d dropped); open in ui.perfetto.dev\n",
				tracer.Len(), *traceOut, tracer.Dropped())
		}
		if sampler != nil {
			if err := writeMetrics(*metricsOut, sampler); err != nil {
				fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
				os.Exit(1)
			}
		}
	}

	fmt.Printf("layout (logical -> physical -> ramp):\n")
	for logical, phys := range cell.RandomLayout(*seed) {
		fmt.Printf("  SPE%d -> phys %d -> ramp %v\n", logical, phys, eib.PhysicalSPERamp(phys))
	}

	var (
		sys    *cell.System
		gbps   float64
		cycles sim.Time
	)
	if *timeline > 0 {
		// The timeline mode steps the engine manually in fixed windows,
		// so it drives the System directly instead of going through the
		// scheduler.
		sys = cell.New(cfg)
		instrument(sys)
		sc := cell.Scenario{Kind: *scenario, SPEs: *spes, Chunk: *chunk, Volume: *volume, Op: *op, List: *dmalist, Ring: *ring}.WithDefaultOp()
		totalBytes, err := sc.Install(sys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(2)
		}
		runTimeline(sys, *timeline)
		if err := sys.Verify(); err != nil {
			flushObservability()
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(1)
		}
		cycles = sys.Eng.Now()
		gbps = sys.GBps(totalBytes, cycles)
	} else {
		// The standard run is a one-point grid on the shared sweep
		// scheduler: scenario validation happens up front (a bad -chunk
		// fails with a clear message), and a wedged or panicking
		// simulation comes back as a structured per-point diagnostic
		// instead of killing the process. The Instrument hook returns
		// true to retain the System: all the machine-level reporting
		// below reads it after the run.
		spec := core.SweepSpec{
			Scenario:  *scenario,
			SPEs:      *spes,
			Op:        *op,
			List:      *dmalist,
			Ring:      *ring,
			Chunks:    []int{*chunk},
			Seeds:     []int64{*seed},
			Volume:    *volume,
			Workers:   1,
			Base:      &cfg,
			MaxCycles: sim.Time(*maxCycles),
			Instrument: func(_ int, _ int64, s *cell.System) bool {
				sys = s
				instrument(s)
				return true
			},
		}
		results, err := core.RunSweep(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(2)
		}
		r := results[0]
		if r.Err != nil {
			// A wedged or byte-losing run exits non-zero with the
			// structured diagnostic (stuck processes, outstanding MFC
			// tags, cycle, ...).
			flushObservability()
			// r.Log carries the resolved layout plus the full diagnostic
			// (r.Err's text included), so it is the complete report.
			for _, line := range r.Log {
				fmt.Fprintf(os.Stderr, "cellsim: %s\n", line)
			}
			os.Exit(1)
		}
		cycles = r.Cycles
		gbps = r.GBps
	}
	flushObservability()
	fmt.Printf("\nscenario %s: %d SPEs, %dB elements, %d MB/SPE\n",
		*scenario, *spes, *chunk, *volume>>20)
	fmt.Printf("simulated %d cycles (%.3f ms at %.1f GHz), %d events\n",
		cycles, float64(cycles)/cfg.ClockGHz/1e6, cfg.ClockGHz, sys.Eng.Fired())
	fmt.Printf("aggregate bandwidth: %.2f GB/s\n", gbps)

	st := sys.Bus.Stats()
	fmt.Printf("\nEIB: %d transfers (%d ramp-local), %d MB, %d commands, wait %d cycles\n",
		st.Transfers, st.LocalTransfers, st.Bytes>>20, st.Commands, st.WaitCycles)
	// Ramp-local transfers never wait on the rings, so the meaningful
	// average excludes them (see eib.Stats.WaitCycles).
	if ring := st.Transfers - st.LocalTransfers; ring > 0 {
		fmt.Printf("  average wait per ring transfer: %.1f cycles\n",
			float64(st.WaitCycles)/float64(ring))
	}
	for i, busy := range st.BusyCycles {
		dir := "cw"
		if i >= 2 {
			dir = "ccw"
		}
		util := float64(busy) / float64(cycles) * 100
		fmt.Printf("  ring %d (%s): %d segment-cycles reserved (%.1f%% of one segment), %d transfers, %d MB\n",
			i, dir, busy, util, st.PerRingTransfers[i], st.PerRingBytes[i]>>20)
	}
	fmt.Printf("  per-direction: cw %d transfers / %d MB, ccw %d transfers / %d MB\n",
		st.PerDirCount[eib.Clockwise], st.PerDirBytes[eib.Clockwise]>>20,
		st.PerDirCount[eib.Counterclockwise], st.PerDirBytes[eib.Counterclockwise]>>20)
	for r := 0; r < eib.NumRamps; r++ {
		if st.PerRampTransfers[r] == 0 && st.PerRampRecvBytes[r] == 0 {
			continue
		}
		fmt.Printf("  ramp %-5v: sourced %4d MB in %d transfers, sank %4d MB\n",
			eib.RampID(r), st.PerRampBytes[r]>>20, st.PerRampTransfers[r], st.PerRampRecvBytes[r]>>20)
	}

	for b := 0; b < 2; b++ {
		bs := sys.Mem.BankStats(b)
		name := "local (MIC)"
		if b == 1 {
			name = "remote (IOIF)"
		}
		fmt.Printf("bank %d %s: read %d MB, wrote %d MB, %d requests, %d refreshes\n",
			b, name, bs.ReadBytes>>20, bs.WriteBytes>>20, bs.Requests, bs.Refreshes)
	}

	for i, sp := range sys.SPEs {
		ms := sp.MFC().Stats()
		if ms.Commands == 0 {
			continue
		}
		fmt.Printf("SPE%d MFC: %d commands, %d packets, %d MB\n",
			i, ms.Commands, ms.Packets, ms.Bytes>>20)
	}

	if inj := sys.Faults(); inj != nil {
		fs := inj.Stats()
		fmt.Printf("faults injected: %d (mfc-retry %d, xdr-stall %d, eib-slow %d, eib-outage %d, done-delay %d)\n",
			fs.Total(), fs.MFCRetries, fs.XDRStalls, fs.EIBSlow, fs.EIBOutages, fs.DoneDelays)
	}

	if *dumpN > 0 {
		fmt.Printf("\nissued,start,end,src,dst,bytes,ring\n")
		for _, tr := range sys.Bus.Trace() {
			fmt.Printf("%d,%d,%d,%v,%v,%d,%d\n",
				tr.Issued, tr.Start, tr.End, tr.Src, tr.Dst, tr.Bytes, tr.Ring)
		}
	}

	if *perfOn {
		rep := report.BuildPerf(report.PerfInput{
			Rollup:    sys.Perf().Rollup(),
			Windows:   perfWindows,
			ClockGHz:  cfg.ClockGHz,
			AppGBps:   gbps,
			AppCycles: cycles,
		})
		fmt.Printf("\nperf counters:\n")
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cellsim: %v\n", err)
			os.Exit(1)
		}
		if !rep.OK() {
			// A failed cross-check means the counter and application
			// derivations disagree — the methodology bug the validator
			// exists to catch. Fail loudly so CI notices.
			fmt.Fprintf(os.Stderr, "cellsim: perf cross-check failed (counter-derived vs application bandwidth beyond %.1f%%)\n",
				rep.Tolerance*100)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the tracer's events as Perfetto-loadable JSON.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps a metrics sampler's timeseries as CSV.
func writeMetrics(path string, s *trace.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.TimeseriesCSV(f, s.Timeseries()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTimeline drives the simulation in fixed windows, printing per-window
// EIB and memory-bank traffic so saturation phases are visible over time.
func runTimeline(sys *cell.System, window int64) {
	// bytes/cycle to GB/s at the configured clock — not a hardcoded
	// 2.1 GHz, so -timeline output stays correct under -config overrides.
	clock := sys.Config().ClockGHz
	fmt.Printf("\n%12s %10s %10s %10s %10s\n", "cycles", "EIB GB/s", "bank0 GB/s", "bank1 GB/s", "cmds")
	var prevBytes, prevB0, prevB1, prevCmd int64
	for {
		t := sys.Eng.Now() + sim.Time(window)
		more := sys.Eng.RunUntil(t)
		st := sys.Bus.Stats()
		b0 := sys.Mem.BankStats(0)
		b1 := sys.Mem.BankStats(1)
		gb := func(d int64) float64 { return float64(d) * clock / float64(window) }
		r0 := b0.ReadBytes + b0.WriteBytes
		r1 := b1.ReadBytes + b1.WriteBytes
		fmt.Printf("%12d %10.2f %10.2f %10.2f %10d\n",
			sys.Eng.Now(), gb(st.Bytes-prevBytes), gb(r0-prevB0), gb(r1-prevB1), st.Commands-prevCmd)
		prevBytes, prevB0, prevB1, prevCmd = st.Bytes, r0, r1, st.Commands
		if !more {
			return
		}
	}
}
