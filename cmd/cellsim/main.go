// Command cellsim runs a single DMA scenario on the Cell BE model and
// dumps the machine-level picture behind the number: the logical-to-
// physical SPE layout, per-ring occupancy, command counts, memory bank
// traffic and MFC statistics. It is the debugging companion to cellbench.
//
// Usage:
//
//	cellsim -scenario pair -chunk 4096 -seed 3
//	cellsim -scenario cycle -spes 8
//	cellsim -scenario mem -spes 4 -op copy
package main

import (
	"flag"
	"fmt"
	"os"

	"cellbe/internal/cell"
	"cellbe/internal/eib"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "pair, couples, cycle, or mem")
		spes     = flag.Int("spes", 2, "number of SPEs involved")
		chunk    = flag.Int("chunk", 16384, "DMA element size in bytes")
		op       = flag.String("op", "get", "mem scenario operation: get, put, or copy")
		volume   = flag.Int64("volume", 2<<20, "bytes per SPE")
		seed     = flag.Int64("seed", 0, "layout seed (0 = identity)")
		timeline = flag.Int64("timeline", 0, "print per-window utilization every N cycles (0 = off)")
		dumpN    = flag.Int("dump-transfers", 0, "print the last N EIB transfers as CSV")
	)
	flag.Parse()

	cfg := cell.DefaultConfig()
	cfg.Layout = cell.RandomLayout(*seed)
	if *dumpN > 0 {
		cfg.EIB.TraceCapacity = *dumpN
	}
	sys := cell.New(cfg)

	fmt.Printf("layout (logical -> physical -> ramp):\n")
	for logical, phys := range sys.Layout() {
		fmt.Printf("  SPE%d -> phys %d -> ramp %v\n", logical, phys, eib.PhysicalSPERamp(phys))
	}

	var totalBytes int64
	done := 0
	spawn := func(idx int, bytes int64, kernel func(ctx *spe.Context)) {
		totalBytes += bytes
		sys.SPEs[idx].Run(fmt.Sprintf("spe%d", idx), func(ctx *spe.Context) {
			kernel(ctx)
			done++
		})
	}

	pairKernel := func(idx, peer int) {
		spawn(idx, 2*(*volume), func(ctx *spe.Context) {
			peerEA := sys.LSEA(peer, 0)
			slots := (128 << 10) / *chunk
			if slots > 8 {
				slots = 8
			}
			if slots < 1 {
				slots = 1
			}
			i := 0
			for off := int64(0); off < *volume; off += int64(*chunk) {
				slot := i % slots
				ctx.Get(slot*(*chunk), peerEA+int64(slot*(*chunk)), *chunk, 0)
				ctx.Put((128<<10)/2+slot*(*chunk), peerEA+int64(slot*(*chunk)), *chunk, 1)
				i++
			}
			ctx.WaitTagMask(1<<0 | 1<<1)
		})
	}

	switch *scenario {
	case "pair":
		pairKernel(0, 1)
	case "couples":
		for c := 0; c < *spes/2; c++ {
			pairKernel(2*c, 2*c+1)
		}
	case "cycle":
		for i := 0; i < *spes; i++ {
			pairKernel(i, (i+1)%*spes)
		}
	case "mem":
		for i := 0; i < *spes; i++ {
			i := i
			base := sys.Alloc(*volume, 1<<16)
			spawn(i, *volume, func(ctx *spe.Context) {
				tag := 0
				for off := int64(0); off < *volume; off += int64(*chunk) {
					ls := int(off) % (128 << 10)
					if ls+*chunk > 128<<10 {
						ls = 0
					}
					switch *op {
					case "get":
						ctx.Get(ls, base+off, *chunk, tag)
					case "put":
						ctx.Put(ls, base+off, *chunk, tag)
					case "copy":
						ctx.GetF(ls, base+off, *chunk, tag)
						ctx.PutF(ls, base+off, *chunk, tag)
					default:
						fmt.Fprintf(os.Stderr, "cellsim: unknown op %q\n", *op)
						os.Exit(2)
					}
				}
				ctx.WaitTagMask(^uint32(0))
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "cellsim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if *timeline > 0 {
		runTimeline(sys, *timeline)
	} else {
		sys.Run()
	}
	cycles := sys.Eng.Now()
	fmt.Printf("\nscenario %s: %d SPEs, %dB elements, %d MB/SPE\n",
		*scenario, *spes, *chunk, *volume>>20)
	fmt.Printf("simulated %d cycles (%.3f ms at %.1f GHz), %d events\n",
		cycles, float64(cycles)/cfg.ClockGHz/1e6, cfg.ClockGHz, sys.Eng.Fired())
	fmt.Printf("aggregate bandwidth: %.2f GB/s\n", sys.GBps(totalBytes, cycles))

	st := sys.Bus.Stats()
	fmt.Printf("\nEIB: %d transfers, %d MB, %d commands, wait %d cycles\n",
		st.Transfers, st.Bytes>>20, st.Commands, st.WaitCycles)
	for i, busy := range st.BusyCycles {
		dir := "cw"
		if i >= 2 {
			dir = "ccw"
		}
		util := float64(busy) / float64(cycles) * 100
		fmt.Printf("  ring %d (%s): %d segment-cycles reserved (%.1f%% of one segment)\n", i, dir, busy, util)
	}
	fmt.Printf("  per-direction transfers: cw=%d ccw=%d\n",
		st.PerDirCount[eib.Clockwise], st.PerDirCount[eib.Counterclockwise])

	for b := 0; b < 2; b++ {
		bs := sys.Mem.BankStats(b)
		name := "local (MIC)"
		if b == 1 {
			name = "remote (IOIF)"
		}
		fmt.Printf("bank %d %s: read %d MB, wrote %d MB, %d requests, %d refreshes\n",
			b, name, bs.ReadBytes>>20, bs.WriteBytes>>20, bs.Requests, bs.Refreshes)
	}

	for i, sp := range sys.SPEs {
		ms := sp.MFC().Stats()
		if ms.Commands == 0 {
			continue
		}
		fmt.Printf("SPE%d MFC: %d commands, %d packets, %d MB\n",
			i, ms.Commands, ms.Packets, ms.Bytes>>20)
	}
	_ = done

	if *dumpN > 0 {
		fmt.Printf("\nissued,start,end,src,dst,bytes,ring\n")
		for _, tr := range sys.Bus.Trace() {
			fmt.Printf("%d,%d,%d,%v,%v,%d,%d\n",
				tr.Issued, tr.Start, tr.End, tr.Src, tr.Dst, tr.Bytes, tr.Ring)
		}
	}
}

// runTimeline drives the simulation in fixed windows, printing per-window
// EIB and memory-bank traffic so saturation phases are visible over time.
func runTimeline(sys *cell.System, window int64) {
	fmt.Printf("\n%12s %10s %10s %10s %10s\n", "cycles", "EIB GB/s", "bank0 GB/s", "bank1 GB/s", "cmds")
	var prevBytes, prevB0, prevB1, prevCmd int64
	for {
		t := sys.Eng.Now() + sim.Time(window)
		more := sys.Eng.RunUntil(t)
		st := sys.Bus.Stats()
		b0 := sys.Mem.BankStats(0)
		b1 := sys.Mem.BankStats(1)
		gb := func(d int64) float64 { return float64(d) * 2.1 / float64(window) }
		r0 := b0.ReadBytes + b0.WriteBytes
		r1 := b1.ReadBytes + b1.WriteBytes
		fmt.Printf("%12d %10.2f %10.2f %10.2f %10d\n",
			sys.Eng.Now(), gb(st.Bytes-prevBytes), gb(r0-prevB0), gb(r1-prevB1), st.Commands-prevCmd)
		prevBytes, prevB0, prevB1, prevCmd = st.Bytes, r0, r1, st.Commands
		if !more {
			return
		}
	}
}
