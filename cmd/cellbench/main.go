// Command cellbench runs the paper's microbenchmark suite against the
// Cell Broadband Engine model and prints the reproduced figures.
//
// Usage:
//
//	cellbench -list
//	cellbench -experiment spe-mem-get
//	cellbench -all -format csv > results.csv
//	cellbench -experiment spe-couples -paper -full
//	cellbench -sweep cycle -spes 8 -chunks 1024,4096,16384 -seeds 32 -workers 8
//	cellbench -sweep mem -spes 4 -seeds 4 -perf
//
// The default parameters move 2 MB per SPE across 10 sampled SPE layouts;
// -paper switches to the full 32 MB per SPE of the original setup.
//
// The -sweep mode fans a grid of independent simulations (layout seeds x
// chunk sizes of one scenario) across worker goroutines — each grid point
// owns its event engine, so results are identical for any -workers value
// — and prints one CSV row per point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cellbe/internal/cell"
	"cellbe/internal/conformance"
	"cellbe/internal/core"
	"cellbe/internal/fault"
	"cellbe/internal/report"
	"cellbe/internal/sim"
	"cellbe/internal/trace"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		name   = flag.String("experiment", "", "experiment to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		format = flag.String("format", "table", "output format: table, csv, or chart")
		full   = flag.Bool("full", false, "tables include min/max/median columns")
		paper  = flag.Bool("paper", false, "use the paper's full 32 MB per-SPE volume (slow)")
		runs   = flag.Int("runs", 0, "override the number of layout samples (default 10)")
		seed   = flag.Int64("seed", 1, "first layout seed")
		quiet  = flag.Bool("q", false, "suppress progress messages on stderr")
		cfgIn  = flag.String("config", "", "JSON file overriding the machine configuration")
		dump   = flag.Bool("dump-config", false, "print the default machine configuration as JSON and exit")

		faultSpec = flag.String("faults", "", "fault injection spec, e.g. mfc-retry:0.01,xdr-stall:0.05 (keys: "+strings.Join(fault.Keys(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 0, "seed for the deterministic fault stream (0 = derive from layout seed)")
		maxCycles = flag.Int64("max-cycles", 0, "watchdog cycle budget per simulation (0 = unlimited)")

		traceOut     = flag.String("trace", "", "sweep only: write a Perfetto trace of the first grid point (chunks[0], first seed) to this file")
		traceFilter  = flag.String("trace-filter", "", "comma list of event categories to trace: "+strings.Join(trace.FilterNames(), ", ")+" (empty = all)")
		traceEvents  = flag.Int("trace-events", 1<<20, "trace ring-buffer capacity")
		metricsOut   = flag.String("metrics", "", "sweep only: write a utilization timeseries CSV of the first grid point to this file")
		metricsEvery = flag.Int64("metrics-every", 10000, "metrics sampling interval in cycles")
		perfOn       = flag.Bool("perf", false, "sweep only: print the perf-counter cross-validation report for the first grid point on stderr")

		conform      = flag.Bool("conformance", false, "evaluate every paper claim of internal/conformance and print a PASS/FAIL report")
		conformShort = flag.Bool("conformance-short", false, "with -conformance: only the quick core-physics subset")
		conformDoc   = flag.Bool("conformance-doc", false, "print EXPERIMENTS.md regenerated from the conformance claims and exit")

		sweep   = flag.String("sweep", "", "sweep a scenario (pair, couples, cycle, mem, or a workload: gups, qcd, md, stream) over seeds x chunks")
		spes    = flag.Int("spes", 8, "sweep: number of SPEs involved")
		op      = flag.String("op", "", "sweep: scenario operation — mem get/put/copy, gups get/put/both, stream copy/scale/add/triad (empty = kind default)")
		dmalist = flag.Bool("dmalist", false, "sweep: use the DMA-list kernel variant (GETL/PUTL)")
		chunks  = flag.String("chunks", "1024,4096,16384", "sweep: comma-separated DMA element sizes")
		seeds   = flag.Int("seeds", 10, "sweep: number of layout seeds (starting at -seed)")
		volume  = flag.Int64("volume", 1<<20, "sweep: bytes per SPE")
		workers = flag.Int("workers", 0, "sweep: concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cell.DefaultConfig()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-18s %-22s %s\n", e.Name, e.Figure, e.Description)
		}
		return
	}

	if *conformDoc {
		fmt.Print(conformance.Doc())
		return
	}
	if *conform {
		d := conformance.NewDataset(conformance.QuickParams(*conformShort))
		if failed := conformance.Report(os.Stdout, conformance.EvalAll(d, *conformShort)); failed > 0 {
			os.Exit(1)
		}
		return
	}

	base, err := baseConfig(*cfgIn, *faultSpec, *faultSeed, *maxCycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellbench: %v\n", err)
		os.Exit(2)
	}

	obs := observability{
		traceOut:     *traceOut,
		traceFilter:  *traceFilter,
		traceEvents:  *traceEvents,
		metricsOut:   *metricsOut,
		metricsEvery: *metricsEvery,
		perf:         *perfOn,
	}
	if *sweep != "" {
		if err := runSweep(*sweep, *spes, *op, *dmalist, *chunks, *seeds, *seed, *volume, *workers, base, *quiet, obs); err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if obs.traceOut != "" || obs.metricsOut != "" || obs.perf {
		// The experiment runner fans layout samples across goroutines, so a
		// single tracer cannot be attached to "the" run; tracing is defined
		// only for one designated grid point of a sweep.
		fmt.Fprintln(os.Stderr, "cellbench: -trace, -metrics and -perf require -sweep (they instrument the first grid point)")
		os.Exit(2)
	}

	params := core.DefaultParams()
	if *paper {
		params = core.PaperParams()
	}
	if *runs > 0 {
		params.Runs = *runs
	}
	params.FirstSeed = *seed
	params.Base = base

	var experiments []core.Experiment
	switch {
	case *all:
		experiments = core.Experiments()
	case *name != "":
		e, err := core.Lookup(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		experiments = []core.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "cellbench: need -experiment NAME, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range experiments {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.Name, e.Figure)
		}
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		switch *format {
		case "table":
			err = report.Table(os.Stdout, res, *full)
		case "csv":
			err = report.CSV(os.Stdout, res)
		case "chart":
			err = report.Chart(os.Stdout, res, 50)
		default:
			fmt.Fprintf(os.Stderr, "cellbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// baseConfig combines the -config override with the fault-injection and
// watchdog flags into the machine configuration experiments run on. It
// returns nil when every knob is at its default, so the common path keeps
// using cell.DefaultConfig lazily.
func baseConfig(cfgIn, faultSpec string, faultSeed, maxCycles int64) (*cell.Config, error) {
	var base *cell.Config
	ensure := func() *cell.Config {
		if base == nil {
			b := cell.DefaultConfig()
			base = &b
		}
		return base
	}
	if cfgIn != "" {
		data, err := os.ReadFile(cfgIn)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, ensure()); err != nil {
			return nil, fmt.Errorf("parsing %s: %v", cfgIn, err)
		}
	}
	if faultSpec != "" {
		fc, err := fault.ParseSpec(faultSpec)
		if err != nil {
			return nil, err
		}
		b := ensure()
		b.Faults = fc
		b.FaultSeed = faultSeed
	}
	if maxCycles > 0 {
		ensure().MaxCycles = sim.Time(maxCycles)
	}
	return base, nil
}

// observability bundles the -trace/-metrics flags. In sweep mode they
// instrument exactly one grid point — (chunks[0], first seed) — because
// every other point runs concurrently on worker goroutines.
type observability struct {
	traceOut     string
	traceFilter  string
	traceEvents  int
	metricsOut   string
	metricsEvery int64
	perf         bool
}

// runSweep parses the sweep flags, fans the grid across workers via
// core.RunSweep and prints one CSV row per grid point.
func runSweep(scenario string, spes int, op string, dmalist bool, chunkList string, seedCount int, firstSeed, volume int64, workers int, base *cell.Config, quiet bool, obs observability) error {
	var chunkSizes []int
	for _, f := range strings.Split(chunkList, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -chunks entry %q: %v", f, err)
		}
		chunkSizes = append(chunkSizes, c)
	}
	if seedCount <= 0 {
		return fmt.Errorf("-seeds must be positive")
	}
	seedList := make([]int64, seedCount)
	for i := range seedList {
		seedList[i] = firstSeed + int64(i)
	}
	spec := core.SweepSpec{
		Scenario: scenario,
		SPEs:     spes,
		Op:       op,
		List:     dmalist,
		Chunks:   chunkSizes,
		Seeds:    seedList,
		Volume:   volume,
		Workers:  workers,
		Base:     base,
	}

	// Instrument exactly the first grid point. The tracer and sampler are
	// owned by that point's worker until RunSweep returns; we only read
	// them afterwards, so no synchronization beyond RunSweep's own join is
	// needed. Only the instrumented point's System is retained (return
	// true); every other grid point returns false so its pooled LS
	// buffers recycle exactly as in an uninstrumented sweep.
	var tracer *trace.Tracer
	var sampler *trace.Sampler
	var perfSys *cell.System
	if obs.traceOut != "" || obs.metricsOut != "" || obs.perf {
		mask, err := trace.ParseFilter(obs.traceFilter)
		if err != nil {
			return err
		}
		target := struct {
			chunk int
			seed  int64
		}{chunkSizes[0], seedList[0]}
		spec.Instrument = func(chunk int, seed int64, sys *cell.System) bool {
			if chunk != target.chunk || seed != target.seed {
				return false
			}
			if obs.traceOut != "" {
				tracer = trace.New(obs.traceEvents, mask)
				sys.SetTracer(tracer)
			}
			if obs.metricsOut != "" {
				sampler = sys.StartMetrics(sim.Time(obs.metricsEvery))
			}
			if obs.perf {
				// The sweep runner attaches a fresh counter block to
				// every point before this hook runs; retaining the
				// System is enough to read it back afterwards.
				perfSys = sys
			}
			return true
		}
	}

	start := time.Now()
	results, err := core.RunSweep(spec)
	if err != nil {
		return err
	}
	if tracer != nil {
		f, err := os.Create(obs.traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %d trace events for point chunk=%d seed=%d to %s (%d dropped); open in ui.perfetto.dev\n",
				tracer.Len(), chunkSizes[0], seedList[0], obs.traceOut, tracer.Dropped())
		}
	}
	if sampler != nil {
		f, err := os.Create(obs.metricsOut)
		if err != nil {
			return err
		}
		if err := report.TimeseriesCSV(f, sampler.Timeseries()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote metrics for point chunk=%d seed=%d to %s\n",
				chunkSizes[0], seedList[0], obs.metricsOut)
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "swept %d points in %v\n", len(results), time.Since(start).Round(time.Millisecond))
	}
	failed := 0
	fmt.Println("scenario,chunk,seed,cycles,GBps,transfers,wait_cycles,commands,error")
	for _, r := range results {
		errCol := ""
		if r.Err != nil {
			failed++
			// Keep the CSV one row per point: first line of the
			// diagnostic, quoted.
			errCol = strings.SplitN(r.Err.Error(), "\n", 2)[0]
			errCol = strings.ReplaceAll(errCol, `"`, `""`)
		}
		fmt.Printf("%s,%d,%d,%d,%.3f,%d,%d,%d,\"%s\"\n",
			scenario, r.Chunk, r.Seed, r.Cycles, r.GBps, r.Transfers, r.WaitCycles, r.Commands, errCol)
	}
	// Per-point diagnostics, serialized after the CSV so concurrent grid
	// points can never interleave lines on stderr. Results arrive sorted
	// by (chunk, seed), so the order is deterministic too.
	for _, r := range results {
		for _, line := range r.Log {
			fmt.Fprintf(os.Stderr, "point chunk=%d seed=%d: %s\n", r.Chunk, r.Seed, line)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d grid points failed (see error column)", failed, len(results))
	}
	if perfSys != nil {
		var point *core.SweepResult
		for i := range results {
			if results[i].Chunk == chunkSizes[0] && results[i].Seed == seedList[0] {
				point = &results[i]
				break
			}
		}
		if point == nil || perfSys.Perf() == nil {
			return fmt.Errorf("-perf: instrumented point chunk=%d seed=%d not found in results", chunkSizes[0], seedList[0])
		}
		cfg := cell.DefaultConfig()
		if base != nil {
			cfg = *base
		}
		rep := report.BuildPerf(report.PerfInput{
			Rollup:    perfSys.Perf().Rollup(),
			ClockGHz:  cfg.ClockGHz,
			AppGBps:   point.GBps,
			AppCycles: point.Cycles,
		})
		fmt.Fprintf(os.Stderr, "\nperf counters (point chunk=%d seed=%d):\n", point.Chunk, point.Seed)
		if err := rep.Write(os.Stderr); err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("-perf: counter-derived bandwidth disagrees with application measurement beyond %.0f%% tolerance", rep.Tolerance*100)
		}
	}
	return nil
}
