// Command cellbench runs the paper's microbenchmark suite against the
// Cell Broadband Engine model and prints the reproduced figures.
//
// Usage:
//
//	cellbench -list
//	cellbench -experiment spe-mem-get
//	cellbench -all -format csv > results.csv
//	cellbench -experiment spe-couples -paper -full
//
// The default parameters move 2 MB per SPE across 10 sampled SPE layouts;
// -paper switches to the full 32 MB per SPE of the original setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/report"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		name   = flag.String("experiment", "", "experiment to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		format = flag.String("format", "table", "output format: table, csv, or chart")
		full   = flag.Bool("full", false, "tables include min/max/median columns")
		paper  = flag.Bool("paper", false, "use the paper's full 32 MB per-SPE volume (slow)")
		runs   = flag.Int("runs", 0, "override the number of layout samples (default 10)")
		seed   = flag.Int64("seed", 1, "first layout seed")
		quiet  = flag.Bool("q", false, "suppress progress messages on stderr")
		cfgIn  = flag.String("config", "", "JSON file overriding the machine configuration")
		dump   = flag.Bool("dump-config", false, "print the default machine configuration as JSON and exit")
	)
	flag.Parse()

	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cell.DefaultConfig()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-18s %-22s %s\n", e.Name, e.Figure, e.Description)
		}
		return
	}

	params := core.DefaultParams()
	if *paper {
		params = core.PaperParams()
	}
	if *runs > 0 {
		params.Runs = *runs
	}
	params.FirstSeed = *seed
	if *cfgIn != "" {
		data, err := os.ReadFile(*cfgIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %v\n", err)
			os.Exit(2)
		}
		base := cell.DefaultConfig()
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: parsing %s: %v\n", *cfgIn, err)
			os.Exit(2)
		}
		params.Base = &base
	}

	var experiments []core.Experiment
	switch {
	case *all:
		experiments = core.Experiments()
	case *name != "":
		e, err := core.Lookup(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		experiments = []core.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "cellbench: need -experiment NAME, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range experiments {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.Name, e.Figure)
		}
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		switch *format {
		case "table":
			err = report.Table(os.Stdout, res, *full)
		case "csv":
			err = report.CSV(os.Stdout, res)
		case "chart":
			err = report.Chart(os.Stdout, res, 50)
		default:
			fmt.Fprintf(os.Stderr, "cellbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
