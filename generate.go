package cellbe

// results/full_sweep.txt is the checked-in run that EXPERIMENTS.md cites.
// Regenerate it after adding or changing an experiment (the table gains a
// section per registry entry, so a stale file is visible as a missing
// experiment) with:
//
//	go generate .
//
//go:generate sh -c "go run ./cmd/cellbench -all -full -q > results/full_sweep.txt"

// EXPERIMENTS.md is rendered from the claim tables in internal/conformance
// (TestExperimentsDocInSync fails when the two diverge); regenerate it
// after editing claims.go:
//
//go:generate sh -c "go run ./cmd/cellbench -conformance-doc > EXPERIMENTS.md"
