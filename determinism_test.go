package cellbe

// The EIB scheduler is performance-optimized (precomputed path tables, a
// cursor-based reservation timeline, an allocation-free event heap), and
// every optimization must be *observationally* invisible: the discrete-
// event model is required to produce cycle-for-cycle identical results.
// These goldens were captured from the seed (pre-optimization)
// implementation at fixed layout seeds; any divergence means the
// optimized scheduler changed simulated behavior, not just speed.

import (
	"fmt"
	"testing"

	"cellbe/internal/cell"
)

// determinismSignature runs a scenario at a fixed layout seed and folds
// the end time and the full EIB statistics into a comparable string.
func determinismSignature(t *testing.T, sc cell.Scenario, seed int64) string {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.Layout = cell.RandomLayout(seed)
	sys := cell.New(cfg)
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install %s: %v", sc.Kind, err)
	}
	sys.Run()
	st := sys.Bus.Stats()
	return fmt.Sprintf("now=%d transfers=%d local=%d bytes=%d cmds=%d busy=%v wait=%d rampBytes=%v dir=%v",
		sys.Eng.Now(), st.Transfers, st.LocalTransfers, st.Bytes, st.Commands,
		st.BusyCycles, st.WaitCycles, st.PerRampBytes, st.PerDirCount)
}

func TestSchedulerDeterminism(t *testing.T) {
	const volume = 1 << 20
	cases := []struct {
		name   string
		sc     cell.Scenario
		seed   int64
		golden string
	}{
		{
			name:   "pair",
			sc:     cell.Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=134384 transfers=16384 local=0 bytes=2097152 cmds=16384 busy=[131072 0 131072 0] wait=886971 rampBytes=[0 0 0 0 0 0 0 1048576 0 1048576 0 0] dir=[8192 8192]",
		},
		{
			name:   "couples",
			sc:     cell.Scenario{Kind: "couples", SPEs: 8, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=170414 transfers=65536 local=0 bytes=8388608 cmds=65536 busy=[396720 127568 397168 127120] wait=111650 rampBytes=[0 1048576 1048576 1048576 1048576 0 0 1048576 1048576 1048576 1048576 0] dir=[32768 32768]",
		},
		{
			name:   "cycle",
			sc:     cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=468758 transfers=131072 local=0 bytes=16777216 cmds=131072 busy=[684800 363776 690336 358240] wait=39889818 rampBytes=[0 2097152 2097152 2097152 2097152 0 0 2097152 2097152 2097152 2097152 0] dir=[65536 65536]",
		},
		{
			name:   "mem",
			sc:     cell.Scenario{Kind: "mem", SPEs: 4, Chunk: 16384, Volume: volume, Op: "get"},
			seed:   3,
			golden: "now=381396 transfers=32768 local=0 bytes=4194304 cmds=32768 busy=[162544 42256 200400 119088] wait=5703795 rampBytes=[0 0 0 0 0 0 1245184 0 0 0 0 2949120] dir=[12800 19968]",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := determinismSignature(t, tc.sc, tc.seed)
			if got != tc.golden {
				t.Errorf("scheduler diverged from seed implementation\n got: %s\nwant: %s", got, tc.golden)
			}
		})
	}
}

// TestSchedulerDeterminismRepeatable guards against accidental map
// iteration or pointer-order dependence: the same scenario must produce
// the same signature on back-to-back runs within one process.
func TestSchedulerDeterminismRepeatable(t *testing.T) {
	sc := cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 1 << 18}
	a := determinismSignature(t, sc, 7)
	b := determinismSignature(t, sc, 7)
	if a != b {
		t.Fatalf("back-to-back runs diverged:\n%s\n%s", a, b)
	}
}
