package cellbe

// The EIB scheduler is performance-optimized (precomputed path tables, a
// cursor-based reservation timeline, an allocation-free event heap), and
// every optimization must be *observationally* invisible: the discrete-
// event model is required to produce cycle-for-cycle identical results.
// These goldens were captured from the seed (pre-optimization)
// implementation at fixed layout seeds; any divergence means the
// optimized scheduler changed simulated behavior, not just speed.

import (
	"fmt"
	"testing"

	"cellbe/internal/cell"
)

// determinismSignature runs a scenario at a fixed layout seed and folds
// the end time and the full EIB statistics into a comparable string.
func determinismSignature(t *testing.T, sc cell.Scenario, seed int64) string {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.Layout = cell.RandomLayout(seed)
	sys := cell.New(cfg)
	if _, err := sc.Install(sys); err != nil {
		t.Fatalf("install %s: %v", sc.Kind, err)
	}
	sys.Run()
	st := sys.Bus.Stats()
	return fmt.Sprintf("now=%d transfers=%d local=%d bytes=%d cmds=%d busy=%v wait=%d rampBytes=%v dir=%v",
		sys.Eng.Now(), st.Transfers, st.LocalTransfers, st.Bytes, st.Commands,
		st.BusyCycles, st.WaitCycles, st.PerRampBytes, st.PerDirCount)
}

func TestSchedulerDeterminism(t *testing.T) {
	const volume = 1 << 20
	cases := []struct {
		name   string
		sc     cell.Scenario
		seed   int64
		golden string
	}{
		{
			name:   "pair",
			sc:     cell.Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=134384 transfers=16384 local=0 bytes=2097152 cmds=16384 busy=[131072 0 131072 0] wait=886971 rampBytes=[0 0 0 0 0 0 0 1048576 0 1048576 0 0] dir=[8192 8192]",
		},
		{
			name:   "couples",
			sc:     cell.Scenario{Kind: "couples", SPEs: 8, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=170414 transfers=65536 local=0 bytes=8388608 cmds=65536 busy=[396720 127568 397168 127120] wait=111650 rampBytes=[0 1048576 1048576 1048576 1048576 0 0 1048576 1048576 1048576 1048576 0] dir=[32768 32768]",
		},
		{
			name:   "cycle",
			sc:     cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=468758 transfers=131072 local=0 bytes=16777216 cmds=131072 busy=[684800 363776 690336 358240] wait=39889818 rampBytes=[0 2097152 2097152 2097152 2097152 0 0 2097152 2097152 2097152 2097152 0] dir=[65536 65536]",
		},
		{
			name:   "mem",
			sc:     cell.Scenario{Kind: "mem", SPEs: 4, Chunk: 16384, Volume: volume, Op: "get"},
			seed:   3,
			golden: "now=381396 transfers=32768 local=0 bytes=4194304 cmds=32768 busy=[162544 42256 200400 119088] wait=5703795 rampBytes=[0 0 0 0 0 0 1245184 0 0 0 0 2949120] dir=[12800 19968]",
		},
		// The four workload presets run on the pattern interpreter; their
		// address streams (seeded-random GUPS slots, the QCD halo ring, the
		// MD gather/scatter) add randomness sources of their own, all of
		// which must fold into the same reproducibility contract.
		{
			name:   "gups",
			sc:     cell.Scenario{Kind: "gups", SPEs: 8, Chunk: 64, Volume: 128 << 10, Op: "both"},
			seed:   3,
			golden: "now=403244 transfers=32768 local=0 bytes=2097152 cmds=32768 busy=[82504 48568 81744 49328] wait=209045 rampBytes=[0 131072 131072 131072 131072 0 314432 131072 131072 131072 131072 734144] dir=[16384 16384]",
		},
		{
			name:   "qcd",
			sc:     cell.Scenario{Kind: "qcd", SPEs: 8, Chunk: 4096, Volume: volume},
			seed:   3,
			golden: "now=1717138 transfers=133120 local=0 bytes=17039360 cmds=133120 busy=[823744 233024 833712 239440] wait=12633082 rampBytes=[0 1081344 1081344 1081344 1081344 0 2490368 1081344 1081344 1081344 1081344 5898240] dir=[66048 67072]",
		},
		{
			name:   "md",
			sc:     cell.Scenario{Kind: "md", SPEs: 8, Chunk: 512, Volume: volume},
			seed:   3,
			golden: "now=883020 transfers=65536 local=0 bytes=8388608 cmds=65536 busy=[313232 210608 313648 211088] wait=15626098 rampBytes=[0 524288 524288 524288 524288 0 1244160 524288 524288 524288 524288 2950144] dir=[32740 32796]",
		},
		{
			name:   "stream",
			sc:     cell.Scenario{Kind: "stream", SPEs: 8, Chunk: 16384, Volume: volume, Op: "triad"},
			seed:   3,
			golden: "now=2394336 transfers=196608 local=0 bytes=25165824 cmds=196608 busy=[989232 583632 1006736 566128] wait=11040159 rampBytes=[0 1048576 1048576 1048576 1048576 0 4980736 1048576 1048576 1048576 1048576 11796480] dir=[98304 98304]",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := determinismSignature(t, tc.sc, tc.seed)
			if got != tc.golden {
				t.Errorf("scheduler diverged from seed implementation\n got: %s\nwant: %s", got, tc.golden)
			}
		})
	}
}

// TestSchedulerDeterminismRepeatable guards against accidental map
// iteration or pointer-order dependence: the same scenario must produce
// the same signature on back-to-back runs within one process.
func TestSchedulerDeterminismRepeatable(t *testing.T) {
	sc := cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 1 << 18}
	a := determinismSignature(t, sc, 7)
	b := determinismSignature(t, sc, 7)
	if a != b {
		t.Fatalf("back-to-back runs diverged:\n%s\n%s", a, b)
	}
}
