package cellbe

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benches for the design rules the paper derives. Each bench runs the
// corresponding experiment at reduced volume and reports the headline
// bandwidth numbers as custom metrics (GB/s), so `go test -bench=.`
// regenerates the whole evaluation in one sweep. EXPERIMENTS.md records
// the paper-vs-measured comparison produced from these.

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/perfctr"
	"cellbe/internal/ppe"
	"cellbe/internal/sim"
	"cellbe/internal/spe"
)

// benchParams keeps benchmark iterations affordable: 3 layout samples,
// 1 MB per SPE. Steady-state bandwidth is reached well within that.
func benchParams() core.Params {
	p := core.DefaultParams()
	p.Runs = 3
	p.BytesPerSPE = 1 << 20
	p.PPEBytes = 1 << 20
	return p
}

// reportCurve attaches avg GB/s at a given x of a curve as a bench metric.
func reportCurve(b *testing.B, r *core.Result, label string, x int, metric string) {
	b.Helper()
	s, ok := r.At(label, x)
	if !ok {
		b.Fatalf("missing point %s@%d in %s", label, x, r.Name)
	}
	b.ReportMetric(s.Mean, metric)
}

func runExp(b *testing.B, name string, report func(*core.Result)) {
	b.Helper()
	p := benchParams()
	e, err := core.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	var last *core.Result
	for i := 0; i < b.N; i++ {
		r, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	report(last)
}

func BenchmarkFig03PPEL1(b *testing.B) {
	runExp(b, "ppe-l1", func(r *core.Result) {
		reportCurve(b, r, "load 1T", 8, "load8B-GB/s")
		reportCurve(b, r, "load 1T", 1, "load1B-GB/s")
		reportCurve(b, r, "store 1T", 16, "store16B-GB/s")
		reportCurve(b, r, "copy 1T", 16, "copy16B-GB/s")
	})
}

func BenchmarkFig04PPEL2(b *testing.B) {
	runExp(b, "ppe-l2", func(r *core.Result) {
		reportCurve(b, r, "load 1T", 8, "load1T-GB/s")
		reportCurve(b, r, "load 2T", 8, "load2T-GB/s")
		reportCurve(b, r, "store 1T", 16, "store1T-GB/s")
	})
}

func BenchmarkFig06PPEMem(b *testing.B) {
	runExp(b, "ppe-mem", func(r *core.Result) {
		reportCurve(b, r, "load 1T", 8, "load1T-GB/s")
		reportCurve(b, r, "store 1T", 16, "store1T-GB/s")
		reportCurve(b, r, "copy 2T", 16, "copy2T-GB/s")
	})
}

func BenchmarkFig08SPEMemGet(b *testing.B) {
	runExp(b, "spe-mem-get", func(r *core.Result) {
		reportCurve(b, r, "1 SPE", 16384, "spe1-GB/s")
		reportCurve(b, r, "2 SPE", 16384, "spe2-GB/s")
		reportCurve(b, r, "4 SPE", 16384, "spe4-GB/s")
		reportCurve(b, r, "8 SPE", 16384, "spe8-GB/s")
	})
}

func BenchmarkFig08SPEMemPut(b *testing.B) {
	runExp(b, "spe-mem-put", func(r *core.Result) {
		reportCurve(b, r, "1 SPE", 16384, "spe1-GB/s")
		reportCurve(b, r, "4 SPE", 16384, "spe4-GB/s")
	})
}

func BenchmarkFig08SPEMemCopy(b *testing.B) {
	runExp(b, "spe-mem-copy", func(r *core.Result) {
		reportCurve(b, r, "1 SPE", 16384, "spe1-GB/s")
		reportCurve(b, r, "4 SPE", 16384, "spe4-GB/s")
	})
}

func BenchmarkSPELocalStore(b *testing.B) {
	runExp(b, "spe-ls", func(r *core.Result) {
		reportCurve(b, r, "load", 16, "load16B-GB/s")
		reportCurve(b, r, "load", 4, "load4B-GB/s")
		reportCurve(b, r, "store", 16, "store16B-GB/s")
	})
}

func BenchmarkFig10SyncDelay(b *testing.B) {
	runExp(b, "spe-pair-sync", func(r *core.Result) {
		reportCurve(b, r, "every 1", 2048, "sync1-GB/s")
		reportCurve(b, r, "all", 2048, "syncAll-GB/s")
		reportCurve(b, r, "all", 16384, "syncAll16K-GB/s")
	})
}

func BenchmarkFig12Couples(b *testing.B) {
	runExp(b, "spe-couples", func(r *core.Result) {
		reportCurve(b, r, "2 SPEs", 16384, "spe2-GB/s")
		reportCurve(b, r, "4 SPEs", 16384, "spe4-GB/s")
		reportCurve(b, r, "8 SPEs", 16384, "spe8-GB/s")
	})
}

func BenchmarkFig12CouplesList(b *testing.B) {
	runExp(b, "spe-couples-list", func(r *core.Result) {
		reportCurve(b, r, "2 SPEs", 128, "spe2at128B-GB/s")
		reportCurve(b, r, "8 SPEs", 16384, "spe8-GB/s")
	})
}

func BenchmarkFig13CouplesDist(b *testing.B) {
	// Min/max/median across layouts at 8 SPEs: the layout-placement
	// spread of Figure 13.
	p := benchParams()
	p.Runs = 10
	var spread, min, max float64
	for i := 0; i < b.N; i++ {
		r, err := core.SPECouples(p, false)
		if err != nil {
			b.Fatal(err)
		}
		s, ok := r.At("8 SPEs", 16384)
		if !ok {
			b.Fatal("missing 8-SPE point")
		}
		spread, min, max = s.Spread(), s.Min, s.Max
	}
	b.ReportMetric(min, "min-GB/s")
	b.ReportMetric(max, "max-GB/s")
	b.ReportMetric(spread, "spread-GB/s")
}

func BenchmarkFig15Cycle(b *testing.B) {
	runExp(b, "spe-cycle", func(r *core.Result) {
		reportCurve(b, r, "2 SPEs", 16384, "spe2-GB/s")
		reportCurve(b, r, "4 SPEs", 16384, "spe4-GB/s")
		reportCurve(b, r, "8 SPEs", 16384, "spe8-GB/s")
	})
}

func BenchmarkFig16CycleDist(b *testing.B) {
	p := benchParams()
	p.Runs = 10
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := core.SPECycle(p, false)
		if err != nil {
			b.Fatal(err)
		}
		s, ok := r.At("8 SPEs", 16384)
		if !ok {
			b.Fatal("missing 8-SPE point")
		}
		spread = s.Spread()
	}
	b.ReportMetric(spread, "spread-GB/s")
}

func BenchmarkStreaming(b *testing.B) {
	runExp(b, "streaming", func(r *core.Result) {
		reportCurve(b, r, "aggregate", 1, "oneStream-GB/s")
		reportCurve(b, r, "aggregate", 2, "twoStreams-GB/s")
		reportCurve(b, r, "aggregate", 4, "fourStreams-GB/s")
	})
}

// --- Hot-path perf baselines (BENCH_eib.json) ---

// benchJSONMu serializes updates to the shared BENCH_eib.json baseline.
var benchJSONMu sync.Mutex

// recordBenchBaseline merges the given metrics for one benchmark into
// BENCH_eib.json, the checked-against perf baseline for the EIB hot path.
// Regenerate it with: go test -bench 'EIBSaturated|Sweep' -benchmem .
func recordBenchBaseline(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	benchJSONMu.Lock()
	defer benchJSONMu.Unlock()
	const path = "BENCH_eib.json"
	all := map[string]map[string]float64{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			b.Logf("ignoring unparsable %s: %v", path, err)
			all = map[string]map[string]float64{}
		}
	}
	all[name] = metrics
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// saturatedScenario is the EIB saturation workload the tentpole
// optimization targets: 8 SPEs in a cycle exchanging 4 KB elements, the
// regime where ring-segment conflicts dominate (paper Figures 15/16).
func saturatedScenario() cell.Scenario {
	return cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: 256 << 10}
}

// BenchmarkEIBSaturated measures a full saturated-EIB simulation,
// including allocations: the scheduler hot path is required to do
// near-zero allocations per transfer, so allocs/op here is a guarded
// figure of merit, not just a curiosity.
func BenchmarkEIBSaturated(b *testing.B) {
	sc := saturatedScenario()
	var cycles sim.Time
	var transfers int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cell.DefaultConfig()
		cfg.Layout = cell.RandomLayout(3)
		sys := cell.New(cfg)
		total, err := sc.Install(sys)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run()
		cycles = sys.Eng.Now()
		transfers = sys.Bus.Stats().Transfers
		_ = total
	}
	b.StopTimer()
	perOp := testing.AllocsPerRun(1, func() {
		cfg := cell.DefaultConfig()
		cfg.Layout = cell.RandomLayout(3)
		sys := cell.New(cfg)
		if _, err := sc.Install(sys); err != nil {
			b.Fatal(err)
		}
		sys.Run()
	})
	b.ReportMetric(perOp/float64(transfers), "allocs/transfer")
	recordBenchBaseline(b, "EIBSaturated", map[string]float64{
		"cycles":          float64(cycles),
		"transfers":       float64(transfers),
		"allocs/op":       perOp,
		"allocs/transfer": perOp / float64(transfers),
	})
}

// BenchmarkSweep measures the parallel sweep runner end to end: a small
// seeds x chunks grid of saturated-cycle runs fanned across workers.
func BenchmarkSweep(b *testing.B) {
	spec := core.SweepSpec{
		Scenario: "cycle",
		SPEs:     8,
		Chunks:   []int{1024, 4096},
		Seeds:    []int64{1, 2, 3},
		Volume:   128 << 10,
	}
	var results []core.SweepResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = core.RunSweep(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	points := float64(len(results))
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(points*float64(b.N)/elapsed, "points/s")
	}
	recordBenchBaseline(b, "Sweep", map[string]float64{
		"points":  points,
		"ns/op":   elapsed * 1e9 / float64(b.N),
		"point/s": points * float64(b.N) / elapsed,
	})
}

// BenchmarkSweepWarm measures the same grid as BenchmarkSweep through the
// warm-clone path in steady state: one snapshot held across all
// iterations, every grid point stamped onto a recycled arena carcass
// (CloneFor + RunChecked + Retire). The delta against BenchmarkSweep is
// the boot-and-teardown overhead the arena removes; allocs/point is the
// alloc-guarded figure of merit for the stamped path.
func BenchmarkSweepWarm(b *testing.B) {
	chunks := []int{1024, 4096}
	seeds := []int64{1, 2, 3}
	tpl := cell.New(cell.DefaultConfig())
	sc := cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: chunks[0], Volume: 128 << 10}
	if _, err := sc.Install(tpl); err != nil {
		b.Fatal(err)
	}
	snap, err := tpl.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	snap.Retire(tpl)
	runGrid := func() float64 {
		n := 0.0
		for _, c := range chunks {
			for _, sd := range seeds {
				cfg := snap.Config()
				cfg.Layout = cell.RandomLayout(sd)
				sys, _, err := snap.CloneFor(cfg, c)
				if err != nil {
					b.Fatal(err)
				}
				sys.SetPerf(&perfctr.Counters{})
				if err := sys.RunChecked(0); err != nil {
					b.Fatal(err)
				}
				snap.Retire(sys)
				n++
			}
		}
		return n
	}
	points := runGrid() // prime the arena: steady state, not first-boot cost
	b.ReportAllocs()
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total += runGrid()
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(total/elapsed, "points/s")
	}
	perPoint := testing.AllocsPerRun(1, func() { runGrid() }) / points
	b.ReportMetric(perPoint, "allocs/point")
	recordBenchBaseline(b, "SweepWarm", map[string]float64{
		"points":       points,
		"point/s":      total / elapsed,
		"allocs/point": perPoint,
	})
}

// --- Ablations: the design rules §5 derives, each with the rule on/off ---

// BenchmarkAblationSyncEvery measures the cost of synchronizing after
// every DMA versus delaying the wait (the paper's first programming rule).
func BenchmarkAblationSyncEvery(b *testing.B) {
	var eager, delayed float64
	for i := 0; i < b.N; i++ {
		sys := cell.New(cell.DefaultConfig())
		eager = pairOnce(sys, 2048, 1)
		sys = cell.New(cell.DefaultConfig())
		delayed = pairOnce(sys, 2048, 0)
	}
	b.ReportMetric(eager, "syncEvery1-GB/s")
	b.ReportMetric(delayed, "delayed-GB/s")
}

func pairOnce(sys *cell.System, chunk, syncEvery int) float64 {
	const volume = 1 << 20
	var cycles sim.Time
	sys.SPEs[0].Run("pair", func(ctx *spe.Context) {
		start := ctx.Decrementer()
		peer := sys.LSEA(1, 0)
		issued, i := 0, 0
		for off := int64(0); off < volume; off += int64(chunk) {
			slot := i % 8
			ctx.Get(slot*chunk, peer+int64(slot*chunk), chunk, 0)
			ctx.Put(64<<10+slot*chunk, peer+int64(slot*chunk), chunk, 1)
			issued += 2
			i++
			if syncEvery > 0 && issued >= syncEvery {
				ctx.WaitTagMask(3)
				issued = 0
			}
		}
		ctx.WaitTagMask(3)
		cycles = ctx.Decrementer() - start
	})
	sys.Run()
	return sys.GBps(2*volume, cycles)
}

// BenchmarkAblationListVsElem compares DMA-list against DMA-elem for
// small chunks (the paper: lists keep peak bandwidth below 1 KB).
func BenchmarkAblationListVsElem(b *testing.B) {
	p := benchParams()
	p.Runs = 1
	var elem, list float64
	for i := 0; i < b.N; i++ {
		r, err := core.SPECouples(p, false)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := r.At("2 SPEs", 128)
		elem = s.Mean
		r, err = core.SPECouples(p, true)
		if err != nil {
			b.Fatal(err)
		}
		s, _ = r.At("2 SPEs", 128)
		list = s.Mean
	}
	b.ReportMetric(elem, "elem128B-GB/s")
	b.ReportMetric(list, "list128B-GB/s")
}

// BenchmarkAblationSingleBank shows why interleaved NUMA allocation
// matters: with all pages on the local bank, multi-SPE memory bandwidth
// caps at the MIC's 16.8 GB/s instead of ~20+.
func BenchmarkAblationSingleBank(b *testing.B) {
	var inter, single float64
	for i := 0; i < b.N; i++ {
		inter = memGetOnce(b, true, 16)
		single = memGetOnce(b, false, 16)
	}
	b.ReportMetric(inter, "interleaved-GB/s")
	b.ReportMetric(single, "singleBank-GB/s")
}

func memGetOnce(b *testing.B, interleave bool, window int) float64 {
	b.Helper()
	cfg := cell.DefaultConfig()
	cfg.Mem.Interleave = interleave
	cfg.MFC.Window = window
	sys := cell.New(cfg)
	const volume = 1 << 20
	var last sim.Time
	for i := 0; i < 4; i++ {
		i := i
		base := sys.Alloc(volume, 1<<16)
		sys.SPEs[i].Run("mem", func(ctx *spe.Context) {
			for off := int64(0); off < volume; off += 16384 {
				ctx.Get(int(off)%(128<<10), base+off, 16384, 0)
			}
			ctx.WaitTagMask(1)
			if e := ctx.Decrementer(); e > last {
				last = e
			}
		})
	}
	sys.Run()
	return sys.GBps(4*volume, last)
}

// BenchmarkAblationWindow shows that a single SPE's ~10 GB/s memory limit
// is the MFC's outstanding-transfer window times line size over round-trip
// latency: quadrupling the window lifts the ceiling.
func BenchmarkAblationWindow(b *testing.B) {
	var w16, w64 float64
	for i := 0; i < b.N; i++ {
		w16 = singleSPEGet(b, 16)
		w64 = singleSPEGet(b, 64)
	}
	b.ReportMetric(w16, "window16-GB/s")
	b.ReportMetric(w64, "window64-GB/s")
}

func singleSPEGet(b *testing.B, window int) float64 {
	b.Helper()
	cfg := cell.DefaultConfig()
	cfg.MFC.Window = window
	sys := cell.New(cfg)
	const volume = 1 << 20
	base := sys.Alloc(volume, 1<<16)
	var cycles sim.Time
	sys.SPEs[0].Run("mem", func(ctx *spe.Context) {
		start := ctx.Decrementer()
		for off := int64(0); off < volume; off += 16384 {
			ctx.Get(int(off)%(128<<10), base+off, 16384, 0)
		}
		ctx.WaitTagMask(1)
		cycles = ctx.Decrementer() - start
	})
	sys.Run()
	return sys.GBps(volume, cycles)
}

// BenchmarkAblationPrefetch shows the L2 stream prefetcher is what makes
// PPE memory reads match L2 reads (Figure 6's surprising equality).
func BenchmarkAblationPrefetch(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = ppeMemLoad(b, cell.DefaultConfig().PPE.PrefetchDepth)
		off = ppeMemLoad(b, 0)
	}
	b.ReportMetric(on, "prefetchOn-GB/s")
	b.ReportMetric(off, "prefetchOff-GB/s")
}

func ppeMemLoad(b *testing.B, depth int) float64 {
	b.Helper()
	cfg := cell.DefaultConfig()
	cfg.PPE.PrefetchDepth = depth
	sys := cell.New(cfg)
	const volume = 1 << 20
	base := sys.Alloc(volume, 128)
	var cycles sim.Time
	sys.PPE.Spawn(0, "load", func(t *ppe.Thread) {
		start := t.Now()
		t.StreamLoad(base, volume, 8)
		cycles = t.Now() - start
	})
	sys.Run()
	return sys.GBps(volume, cycles)
}

// BenchmarkAblationRingGap isolates the EIB arbitration-efficiency model:
// with no switching gap the rings pack perfectly and the couples
// experiment overshoots the measured 95 GB/s.
func BenchmarkAblationRingGap(b *testing.B) {
	var ideal, real float64
	for i := 0; i < b.N; i++ {
		ideal = couplesOnce(b, 0)
		real = couplesOnce(b, cell.DefaultConfig().EIB.RingDeadCycles)
	}
	b.ReportMetric(ideal, "idealArbiter-GB/s")
	b.ReportMetric(real, "realArbiter-GB/s")
}

func couplesOnce(b *testing.B, gap sim.Time) float64 {
	b.Helper()
	// Average across layouts: the arbitration gap only matters on
	// placements whose transfer paths collide.
	const seeds = 6
	sum := 0.0
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := cell.DefaultConfig()
		cfg.EIB.RingDeadCycles = gap
		cfg.Layout = cell.RandomLayout(seed)
		sys := cell.New(cfg)
		const volume = 1 << 20
		var last sim.Time
		for c := 0; c < 4; c++ {
			active, passive := 2*c, 2*c+1
			peer := sys.LSEA(passive, 0)
			sys.SPEs[active].Run("couple", func(ctx *spe.Context) {
				i := 0
				for off := int64(0); off < volume; off += 16384 {
					slot := i % 8
					ctx.Get(slot*16384, peer+int64(slot*16384), 16384, 0)
					ctx.Put(128<<10+slot*16384, peer+int64(slot*16384), 16384, 1)
					i++
				}
				ctx.WaitTagMask(3)
				if e := ctx.Decrementer(); e > last {
					last = e
				}
			})
		}
		sys.Run()
		sum += sys.GBps(8*volume, last)
	}
	return sum / seeds
}

// --- Extensions (the paper's §5 future work) ---

func BenchmarkExtensionKernels(b *testing.B) {
	runExp(b, "kernels", func(r *core.Result) {
		reportCurve(b, r, "dot", 8, "dot8spe-GFLOPS")
		reportCurve(b, r, "matmul", 1, "matmul1spe-GFLOPS")
		reportCurve(b, r, "matmul", 8, "matmul8spe-GFLOPS")
	})
}

func BenchmarkExtensionDMALatency(b *testing.B) {
	runExp(b, "dma-latency", func(r *core.Result) {
		reportCurve(b, r, "LS-to-LS", 128, "ls128B-cycles")
		reportCurve(b, r, "memory", 128, "mem128B-cycles")
	})
}
