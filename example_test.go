package cellbe_test

import (
	"fmt"

	"cellbe"
)

// The basic flow: build a system, run an SPU kernel that DMAs data from
// main memory, and inspect both the payload and the simulated timing.
func Example() {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	addr := sys.Alloc(128, 128)
	sys.Mem.RAM().Write(addr, []byte("hello, cell"))

	sys.SPEs[0].Run("kernel", func(ctx *cellbe.SPUContext) {
		ctx.Get(0, addr, 128, 0)
		ctx.WaitTag(0)
	})
	sys.Run()

	fmt.Printf("%s\n", sys.SPEs[0].LS()[:11])
	// Output: hello, cell
}

// Mailboxes synchronize SPU programs the way the PPE and SPEs handshake
// on real hardware.
func Example_mailbox() {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	a, b := sys.SPEs[0], sys.SPEs[1]

	a.Run("sender", func(ctx *cellbe.SPUContext) {
		copy(a.LS(), "ping")
		ctx.Put(0, sys.LSEA(1, 0), 16, 0)
		ctx.WaitTag(0)
		b.Inbox.Write(ctx.Process, 1)
	})
	b.Run("receiver", func(ctx *cellbe.SPUContext) {
		ctx.ReadMailbox()
		fmt.Printf("%s\n", b.LS()[:4])
	})
	sys.Run()
	// Output: ping
}

// The task runtime infers dependencies from operand overlap and farms
// tasks out to SPE workers.
func Example_taskRuntime() {
	sys := cellbe.NewSystem(cellbe.DefaultConfig())
	in := sys.Alloc(16384, 128)
	out := sys.Alloc(16384, 128)
	sys.Mem.RAM().Write(in, []byte{41})

	rt := cellbe.NewTaskRuntime(sys, []int{0, 1}, cellbe.Forwarding)
	rt.Submit(&cellbe.Task{
		Name:    "inc",
		Inputs:  []cellbe.TaskBuffer{{EA: in, Size: 16384}},
		Outputs: []cellbe.TaskBuffer{{EA: out, Size: 16384}},
		Compute: func(ins, outs [][]byte) {
			for i := range outs[0] {
				outs[0][i] = ins[0][i] + 1
			}
		},
	})
	stats := rt.Run()

	result := make([]byte, 1)
	sys.Mem.RAM().Read(out, result)
	fmt.Printf("tasks=%d result=%d\n", stats.Tasks, result[0])
	// Output: tasks=1 result=42
}

// RunExperiment reproduces any figure of the paper programmatically.
func Example_experiment() {
	p := cellbe.DefaultParams()
	p.Runs = 1
	p.BytesPerSPE = 512 << 10
	res, err := cellbe.RunExperiment("spe-ls", p)
	if err != nil {
		panic(err)
	}
	s, _ := res.At("load", 16)
	fmt.Printf("SPU local store peak: %.1f GB/s\n", s.Mean)
	// Output: SPU local store peak: 33.6 GB/s
}
