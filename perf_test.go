package cellbe

// The perf-counter subsystem (internal/perfctr) is validated two ways.
// The differential test checks the counters against the EIB/XDR
// statistics the timing model already keeps: both are incremented at the
// same decision points, so any disagreement means a hook is missing or
// double-counted. The cross-validation test is the acceptance criterion
// from the paper-reproduction side: bandwidth *derived from counters*
// (bytes x clock / window) must agree with the bandwidth the application
// itself measures, within report.PerfTolerance, on all four canonical
// scenarios. Finally, the window-mismatch regression test reproduces the
// classic counter pitfall — deriving over a window that is not the
// application's measurement window — and asserts the cross-check
// catches it.

import (
	"testing"

	"cellbe/internal/cell"
	"cellbe/internal/perfctr"
	"cellbe/internal/report"
)

// canonicalScenarios are the four golden cases of determinism_test.go.
func canonicalScenarios() []struct {
	name string
	sc   cell.Scenario
} {
	const volume = 1 << 20
	return []struct {
		name string
		sc   cell.Scenario
	}{
		{"pair", cell.Scenario{Kind: "pair", SPEs: 2, Chunk: 4096, Volume: volume}},
		{"couples", cell.Scenario{Kind: "couples", SPEs: 8, Chunk: 4096, Volume: volume}},
		{"cycle", cell.Scenario{Kind: "cycle", SPEs: 8, Chunk: 4096, Volume: volume}},
		{"mem", cell.Scenario{Kind: "mem", SPEs: 4, Chunk: 16384, Volume: volume, Op: "get"}},
	}
}

// runCounted runs sc at a fixed layout seed with a counter block
// attached, returning the finished system, its counters and the payload
// byte total the scenario accounts for.
func runCounted(t *testing.T, sc cell.Scenario, seed int64) (*cell.System, *perfctr.Counters, int64) {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.Layout = cell.RandomLayout(seed)
	sys := cell.New(cfg)
	pc := &perfctr.Counters{}
	sys.SetPerf(pc)
	total, err := sc.Install(sys)
	if err != nil {
		t.Fatalf("install %s: %v", sc.Kind, err)
	}
	sys.Run()
	return sys, pc, total
}

// TestPerfCounterDifferential cross-checks every counter that has a
// twin in the timing model's own statistics. The two bookkeeping paths
// share increment sites but not code, so equality here proves the
// counter hooks sit at exactly the decision points they claim to.
func TestPerfCounterDifferential(t *testing.T) {
	for _, tc := range canonicalScenarios() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys, pc, _ := runCounted(t, tc.sc, 3)
			st := sys.Bus.Stats()

			ringGrants := pc.EIB.GrantTotal()
			if got, want := int64(ringGrants+pc.EIB.LocalGrants), st.Transfers; got != want {
				t.Errorf("grants(ring %d + local %d) = %d, stats transfers %d", ringGrants, pc.EIB.LocalGrants, got, want)
			}
			if got, want := int64(pc.EIB.LocalGrants), st.LocalTransfers; got != want {
				t.Errorf("local grants %d, stats local transfers %d", got, want)
			}
			if got, want := int64(pc.EIB.Bytes), st.Bytes; got != want {
				t.Errorf("counter bytes %d, stats bytes %d", got, want)
			}
			if got, want := int64(pc.EIB.Commands), st.Commands; got != want {
				t.Errorf("counter commands %d, stats commands %d", got, want)
			}
			if got, want := int64(pc.EIB.WaitCycles), int64(st.WaitCycles); got != want {
				t.Errorf("counter wait cycles %d, stats wait cycles %d", got, want)
			}
			for r := range pc.EIB.RingBusy {
				if got, want := int64(pc.EIB.RingBusy[r]), int64(st.BusyCycles[r]); got != want {
					t.Errorf("ring %d busy: counter %d, stats %d", r, got, want)
				}
			}
			for b := 0; b < perfctr.NumBanks; b++ {
				bs := sys.Mem.BankStats(b)
				if got, want := int64(pc.XDR[b].ReadBytes), bs.ReadBytes; got != want {
					t.Errorf("bank %d read bytes: counter %d, stats %d", b, got, want)
				}
				if got, want := int64(pc.XDR[b].WriteBytes), bs.WriteBytes; got != want {
					t.Errorf("bank %d write bytes: counter %d, stats %d", b, got, want)
				}
				if got, want := int64(pc.XDR[b].RefreshStalls), bs.Refreshes; got != want {
					t.Errorf("bank %d refreshes: counter %d, stats %d", b, got, want)
				}
			}
		})
	}
}

// TestPerfCrossValidation is the subsystem's acceptance criterion:
// counter-derived EIB (and, where main memory is involved, XDR)
// bandwidth must agree with the application-measured figure within the
// documented tolerance on every canonical scenario.
func TestPerfCrossValidation(t *testing.T) {
	for _, tc := range canonicalScenarios() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys, pc, total := runCounted(t, tc.sc, 3)
			cycles := sys.Eng.Now()
			rep := report.BuildPerf(report.PerfInput{
				Rollup:    pc.Rollup(),
				ClockGHz:  cell.DefaultConfig().ClockGHz,
				AppGBps:   sys.GBps(total, cycles),
				AppCycles: cycles,
			})
			wantChecks := 1 // eib only: no main-memory traffic in SPE-to-SPE scenarios
			if tc.sc.Kind == "mem" {
				wantChecks = 2 // eib + xdr
			}
			if len(rep.Checks) != wantChecks {
				t.Fatalf("got %d cross-checks, want %d", len(rep.Checks), wantChecks)
			}
			for _, c := range rep.Checks {
				if !c.OK {
					t.Errorf("%s: counters %.3f GB/s vs app %.3f GB/s, delta %.2f%% exceeds %.0f%% tolerance",
						c.Name, c.CounterGBps, c.AppGBps, c.Delta*100, rep.Tolerance*100)
				}
			}
		})
	}
}

// TestPerfWindowMismatchRegression reproduces the counter pitfall the
// cross-check exists to police: deriving bandwidth over a window ~9%
// longer than the application's measurement window (on hardware: the
// counter collection interval vs the benchmark's timed region) deflates
// the counter figure silently. The validator must flag it, not average
// it away.
func TestPerfWindowMismatchRegression(t *testing.T) {
	sc := canonicalScenarios()[0].sc // pair
	sys, pc, total := runCounted(t, sc, 3)
	cycles := sys.Eng.Now()
	rep := report.BuildPerf(report.PerfInput{
		Rollup:       pc.Rollup(),
		ClockGHz:     cell.DefaultConfig().ClockGHz,
		AppGBps:      sys.GBps(total, cycles),
		AppCycles:    cycles,
		WindowCycles: cycles * 109 / 100, // the skewed window
	})
	if rep.OK() {
		t.Fatalf("cross-check passed with a 9%% window mismatch; it must fail (checks: %+v)", rep.Checks)
	}
	for _, c := range rep.Checks {
		if c.Name == "eib" && c.Delta < 0.05 {
			t.Errorf("eib delta %.2f%% too small for a 9%% window skew", c.Delta*100)
		}
	}
}
