package cellbe

// CI benchmark smoke for the sweep runner: plain `go test` runs must
// catch a collapse of sweep throughput or a regression in the warm-clone
// path's allocation budget without waiting for a manual benchmark pass.
// Both tests check against the BENCH_eib.json baseline the benchmarks
// record (regenerate with: go test -bench 'Sweep' -benchmem .).

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"cellbe/internal/cell"
	"cellbe/internal/core"
	"cellbe/internal/perfctr"
)

// benchBaseline reads one metric of one benchmark from BENCH_eib.json,
// skipping the test when the baseline or entry is absent.
func benchBaseline(t *testing.T, bench, metric string) float64 {
	t.Helper()
	data, err := os.ReadFile("BENCH_eib.json")
	if err != nil {
		t.Skipf("no baseline: %v", err)
	}
	var all map[string]map[string]float64
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatalf("unparsable BENCH_eib.json: %v", err)
	}
	v, ok := all[bench][metric]
	if !ok {
		t.Skipf("baseline has no %s %s entry", bench, metric)
	}
	return v
}

// sweepBenchSpec is BenchmarkSweep's grid, shared by the smoke test so
// the baseline and the assertion measure the same workload.
func sweepBenchSpec() core.SweepSpec {
	return core.SweepSpec{
		Scenario: "cycle",
		SPEs:     8,
		Chunks:   []int{1024, 4096},
		Seeds:    []int64{1, 2, 3},
		Volume:   128 << 10,
	}
}

// TestSweepThroughputSmoke holds end-to-end sweep throughput to the
// BENCH_eib.json Sweep baseline within a generous band: 2.5x in either
// direction absorbs CI-machine variance and timer noise on a single
// sample, while still catching an order-of-magnitude collapse (a
// quadratic hot path, an accidental cold-boot-per-point regression) —
// and, on the high side, a stale dishonestly-low baseline.
func TestSweepThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed full sweep: skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timed assertion: the race detector's slowdown would fail any honest band")
	}
	base := benchBaseline(t, "Sweep", "point/s")
	spec := sweepBenchSpec()

	// One warmup sweep (JIT-free, but page faults and first-touch pool
	// growth are real), then one timed sample.
	if _, err := core.RunSweep(spec); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results, err := core.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	got := float64(len(results)) / elapsed

	// Asymmetric band: 2.5x below catches a collapse on any plausible
	// machine; only a 4x overshoot flags the baseline as dishonestly low
	// (merely faster CI hardware must not fail the build).
	if got < base/2.5 {
		t.Errorf("sweep throughput %.1f point/s fell below baseline %.1f/2.5 (re-baseline with go test -bench Sweep . if the machine class changed)",
			got, base)
	}
	if got > base*4 {
		t.Errorf("sweep throughput %.1f point/s exceeds baseline %.1f x4: BENCH_eib.json is stale, re-record it",
			got, base)
	}
	t.Logf("sweep throughput %.1f point/s (baseline %.1f)", got, base)
}

// TestSweepWarmAllocGuard pins the warm-clone path's steady-state
// allocation budget: stamping and running a grid point from a recycled
// arena carcass must stay at the few dozen allocations the SweepWarm
// baseline recorded. Any per-command, per-packet or per-reset allocation
// sneaking back into the clone path trips this immediately (a point
// moves hundreds of DMA commands).
func TestSweepWarmAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full warm grid: skipped in -short mode")
	}
	base := benchBaseline(t, "SweepWarm", "allocs/point")

	spec := sweepBenchSpec()
	tpl := cell.New(cell.DefaultConfig())
	sc := cell.Scenario{Kind: spec.Scenario, SPEs: spec.SPEs, Chunk: spec.Chunks[0], Volume: spec.Volume}
	if _, err := sc.Install(tpl); err != nil {
		t.Fatal(err)
	}
	snap, err := tpl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Retire(tpl)
	gridPoints := float64(len(spec.Chunks) * len(spec.Seeds))
	runGrid := func() {
		for _, c := range spec.Chunks {
			for _, sd := range spec.Seeds {
				cfg := snap.Config()
				cfg.Layout = cell.RandomLayout(sd)
				sys, _, err := snap.CloneFor(cfg, c)
				if err != nil {
					t.Fatal(err)
				}
				sys.SetPerf(&perfctr.Counters{})
				if err := sys.RunChecked(0); err != nil {
					t.Fatal(err)
				}
				snap.Retire(sys)
			}
		}
	}
	runGrid() // reach steady state: pools primed, wheel buckets touched
	perPoint := testing.AllocsPerRun(2, runGrid) / gridPoints
	// 10% + 8 allocs of slack absorbs runtime-version noise; a single new
	// per-command allocation would add hundreds per point.
	limit := base*1.10 + 8
	if perPoint > limit {
		t.Fatalf("warm clone path allocates %.1f allocs/point, baseline %.1f (limit %.1f): the arena reset path started allocating",
			perPoint, base, limit)
	}
	t.Logf("warm clone path: %.1f allocs/point (baseline %.1f)", perPoint, base)
}
